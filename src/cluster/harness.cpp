#include "cluster/harness.hpp"

#include <algorithm>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace apn::cluster {

namespace {

/// Record one harness measurement: a span on the shared "harness" trace
/// track plus a histogram/gauge pair in the global metrics registry.
void record_measurement(const char* name, Time t0, Time t_end, double value,
                        const char* unit) {
  trace::Track::open("harness", "measurements")
      .span("harness", name, t0, t_end, {{"value", value}});
  auto& m = trace::MetricsRegistry::global();
  m.histogram(std::string("harness.") + name + "_" + unit).observe(value);
}

/// A test buffer of the requested memory type on one node. Host buffers
/// are page-aligned so the card's V2P scatter behaviour — and therefore
/// the measured timing — does not depend on where the allocator happened
/// to place them (keeps benches bit-reproducible under ASLR).
struct Buf {
  std::uint64_t addr = 0;
  std::shared_ptr<std::vector<std::uint8_t>> host;  // host buffers only

  static Buf make(Node& node, core::MemType type, std::uint64_t size) {
    Buf b;
    if (type == core::MemType::kGpu || type == core::MemType::kGpuBar1) {
      b.addr = node.cuda().malloc_device(0, size);
    } else {
      b.host = std::make_shared<std::vector<std::uint8_t>>(size + 4096);
      std::uint64_t raw = reinterpret_cast<std::uint64_t>(b.host->data());
      b.addr = (raw + 4095) & ~4095ull;
    }
    return b;
  }
};

struct Shared {
  Time t0 = 0;
  Time t_end = 0;
  std::shared_ptr<sim::Gate> ready;  // receiver registration complete
};

}  // namespace

BwResult loopback_bandwidth(Cluster& c, int node, core::MemType src_type,
                            std::uint64_t size, int count) {
  Node& n = c.node(node);
  const bool flush = n.card().params().flush_at_switch;
  Buf src = Buf::make(n, src_type, size);
  Buf dst = Buf::make(n, src_type, size);
  auto sh = std::make_shared<Shared>();

  [](Cluster* c, int node, Buf src, Buf dst, std::uint64_t size, int count,
     bool flush, core::MemType type,
     std::shared_ptr<Shared> sh) -> sim::Coro {
    core::RdmaDevice& rdma = c->rdma(node);
    co_await rdma.register_buffer(dst.addr, size, type);
    co_await rdma.register_buffer(src.addr, size, type);
    sh->t0 = c->simulator().now();
    std::vector<std::shared_ptr<sim::Gate>> gates;
    gates.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      auto p = rdma.put(c->coord(node), src.addr, size, dst.addr, type,
                        /*carry_data=*/false);
      gates.push_back(p.tx_done);
    }
    if (flush) {
      for (auto& g : gates) co_await g->wait();
    } else {
      for (int i = 0; i < count; ++i) co_await rdma.events().pop();
    }
    sh->t_end = c->simulator().now();
  }(&c, node, src, dst, size, count, flush, src_type, sh);

  c.simulator().run();
  BwResult r;
  r.bytes = size * static_cast<std::uint64_t>(count);
  r.elapsed = sh->t_end - sh->t0;
  r.mbps = units::bandwidth_MBps(Bytes(r.bytes), r.elapsed);
  record_measurement("loopback_bw", sh->t0, sh->t_end, r.mbps, "mbps");
  return r;
}

BwResult twonode_bandwidth(Cluster& c, std::uint64_t size, int count,
                           TwoNodeOptions opt) {
  Node& s = c.node(0);
  Node& d = c.node(1);
  Buf src = Buf::make(s, opt.src_type, size);
  Buf bounce_tx[2] = {Buf::make(s, core::MemType::kHost, size),
                      Buf::make(s, core::MemType::kHost, size)};
  // Destination: either the real-typed buffer, or (staged RX) a host
  // landing buffer that is copied up to the GPU per message.
  Buf dst = Buf::make(d, opt.staged_rx ? core::MemType::kHost : opt.dst_type,
                      size);
  Buf dst_gpu = opt.staged_rx ? Buf::make(d, core::MemType::kGpu, size)
                              : Buf{};
  auto sh = std::make_shared<Shared>();
  sh->ready = std::make_shared<sim::Gate>(c.simulator());

  // Receiver
  [](Cluster* c, Buf dst, Buf dst_gpu, std::uint64_t size, int count,
     TwoNodeOptions opt, std::shared_ptr<Shared> sh) -> sim::Coro {
    core::RdmaDevice& rdma = c->rdma(1);
    co_await rdma.register_buffer(
        dst.addr, size,
        opt.staged_rx ? core::MemType::kHost : opt.dst_type);
    sh->ready->open();
    for (int i = 0; i < count; ++i) {
      co_await rdma.events().pop();
      // Staged RX: synchronous cudaMemcpy H2D per message, as in the
      // paper's P2P=OFF benchmark.
      if (opt.staged_rx)
        co_await c->node(1).cuda().memcpy_sync(dst_gpu.addr, dst.addr, size);
    }
    sh->t_end = c->simulator().now();
  }(&c, dst, dst_gpu, size, count, opt, sh);

  // Sender
  [](Cluster* c, Buf src, Buf b0, Buf b1, Buf dst, std::uint64_t size,
     int count, TwoNodeOptions opt, std::shared_ptr<Shared> sh) -> sim::Coro {
    core::RdmaDevice& rdma = c->rdma(0);
    core::MemType wire_type = opt.staged_tx ? core::MemType::kHost
                                            : opt.src_type;
    if (opt.src_type == core::MemType::kGpu && !opt.staged_tx)
      co_await rdma.register_buffer(src.addr, size, core::MemType::kGpu);
    // Let the receiver finish registration first.
    co_await sh->ready->wait();
    sh->t0 = c->simulator().now();
    // Staged TX uses a *synchronous* cudaMemcpy per message, exactly like
    // the paper's P2P=OFF benchmark (its Fig. 10 shows the full ~10 us
    // D2H sync cost in the sender's per-message overhead).
    for (int i = 0; i < count; ++i) {
      std::uint64_t from = src.addr;
      if (opt.staged_tx) {
        Buf* b = i % 2 == 0 ? &b0 : &b1;
        co_await c->node(0).cuda().memcpy_sync(b->addr, src.addr, size);
        from = b->addr;
      }
      rdma.put(c->coord(1), from, size, dst.addr, wire_type,
               /*carry_data=*/false);
    }
  }(&c, src, bounce_tx[0], bounce_tx[1], dst, size, count, opt, sh);

  c.simulator().run();
  BwResult r;
  r.bytes = size * static_cast<std::uint64_t>(count);
  r.elapsed = sh->t_end - sh->t0;
  r.mbps = units::bandwidth_MBps(Bytes(r.bytes), r.elapsed);
  record_measurement("twonode_bw", sh->t0, sh->t_end, r.mbps, "mbps");
  return r;
}

Time pingpong_latency(Cluster& c, std::uint64_t size, int reps,
                      TwoNodeOptions opt) {
  // Symmetric endpoints: each node has a recv buffer of the destination
  // type and sends from a buffer of the source type.
  Buf src0 = Buf::make(c.node(0), opt.src_type, size);
  Buf src1 = Buf::make(c.node(1), opt.src_type, size);
  Buf dst0 = Buf::make(c.node(0),
                       opt.staged_rx ? core::MemType::kHost : opt.dst_type,
                       size);
  Buf dst1 = Buf::make(c.node(1),
                       opt.staged_rx ? core::MemType::kHost : opt.dst_type,
                       size);
  Buf gpu0 = opt.staged_rx ? Buf::make(c.node(0), core::MemType::kGpu, size)
                           : Buf{};
  Buf gpu1 = opt.staged_rx ? Buf::make(c.node(1), core::MemType::kGpu, size)
                           : Buf{};
  Buf host0 = Buf::make(c.node(0), core::MemType::kHost, size);
  Buf host1 = Buf::make(c.node(1), core::MemType::kHost, size);
  auto sh = std::make_shared<Shared>();
  sh->ready = std::make_shared<sim::Gate>(c.simulator());
  auto ready_count = std::make_shared<int>(0);

  auto endpoint = [](Cluster* c, int me, Buf src, Buf dst, Buf gpu, Buf host,
                     std::uint64_t remote_dst, std::uint64_t size, int reps,
                     TwoNodeOptions opt, std::shared_ptr<Shared> sh,
                     std::shared_ptr<int> ready_count) -> sim::Coro {
    core::RdmaDevice& rdma = c->rdma(me);
    cuda::Runtime& cuda = c->node(me).cuda();
    co_await rdma.register_buffer(
        dst.addr, size, opt.staged_rx ? core::MemType::kHost : opt.dst_type);
    if (opt.src_type == core::MemType::kGpu && !opt.staged_tx)
      co_await rdma.register_buffer(src.addr, size, core::MemType::kGpu);
    if (++*ready_count == 2) sh->ready->open();
    co_await sh->ready->wait();
    if (me == 0) sh->t0 = c->simulator().now();

    for (int i = 0; i < reps; ++i) {
      if (me == 0) {
        // send
        std::uint64_t from = src.addr;
        if (opt.staged_tx) {
          co_await cuda.memcpy_sync(host.addr, src.addr, size);
          from = host.addr;
        }
        rdma.put(c->coord(1), from, size, remote_dst,
                 opt.staged_tx ? core::MemType::kHost : opt.src_type, false);
        // wait reply
        co_await rdma.events().pop();
        if (opt.staged_rx)
          co_await cuda.memcpy_sync(gpu.addr, dst.addr, size);
      } else {
        co_await rdma.events().pop();
        if (opt.staged_rx)
          co_await cuda.memcpy_sync(gpu.addr, dst.addr, size);
        std::uint64_t from = src.addr;
        if (opt.staged_tx) {
          co_await cuda.memcpy_sync(host.addr, src.addr, size);
          from = host.addr;
        }
        rdma.put(c->coord(0), from, size, remote_dst,
                 opt.staged_tx ? core::MemType::kHost : opt.src_type, false);
      }
    }
    if (me == 0) sh->t_end = c->simulator().now();
  };

  endpoint(&c, 0, src0, dst0, gpu0, host0, dst1.addr, size, reps, opt, sh,
           ready_count);
  endpoint(&c, 1, src1, dst1, gpu1, host1, dst0.addr, size, reps, opt, sh,
           ready_count);
  c.simulator().run();
  const Time half_rtt = (sh->t_end - sh->t0) / (2 * reps);
  record_measurement("pingpong", sh->t0, sh->t_end,
                     static_cast<double>(half_rtt) / 1e6, "us");
  return half_rtt;
}

Time host_overhead(Cluster& c, std::uint64_t size, int count,
                   TwoNodeOptions opt, int window) {
  Buf src = Buf::make(c.node(0), opt.src_type, size);
  Buf host = Buf::make(c.node(0), core::MemType::kHost, size);
  Buf dst = Buf::make(c.node(1),
                      opt.staged_rx ? core::MemType::kHost : opt.dst_type,
                      size);
  auto sh = std::make_shared<Shared>();
  sh->ready = std::make_shared<sim::Gate>(c.simulator());

  // Receiver just registers and drains.
  [](Cluster* c, Buf dst, std::uint64_t size, int count, TwoNodeOptions opt,
     std::shared_ptr<Shared> sh) -> sim::Coro {
    core::RdmaDevice& rdma = c->rdma(1);
    co_await rdma.register_buffer(
        dst.addr, size, opt.staged_rx ? core::MemType::kHost : opt.dst_type);
    sh->ready->open();
    for (int i = 0; i < count; ++i) co_await rdma.events().pop();
  }(&c, dst, size, count, opt, sh);

  [](Cluster* c, Buf src, Buf host, Buf dst, std::uint64_t size, int count,
     TwoNodeOptions opt, int window, std::shared_ptr<Shared> sh) -> sim::Coro {
    core::RdmaDevice& rdma = c->rdma(0);
    cuda::Runtime& cuda = c->node(0).cuda();
    if (opt.src_type == core::MemType::kGpu && !opt.staged_tx)
      co_await rdma.register_buffer(src.addr, size, core::MemType::kGpu);
    co_await sh->ready->wait();
    sim::Semaphore credits(c->simulator(), window);
    sh->t0 = c->simulator().now();
    for (int i = 0; i < count; ++i) {
      co_await credits.acquire();
      std::uint64_t from = src.addr;
      if (opt.staged_tx) {
        co_await cuda.memcpy_sync(host.addr, src.addr, size);
        from = host.addr;
      }
      auto p = rdma.put(c->coord(1), from, size, dst.addr,
                        opt.staged_tx ? core::MemType::kHost : opt.src_type,
                        false);
      // Free a credit when the message left the card.
      [](std::shared_ptr<sim::Gate> g, sim::Semaphore* s) -> sim::Coro {
        co_await g->wait();
        s->release();
      }(p.tx_done, &credits);
    }
    sh->t_end = c->simulator().now();
    // Drain remaining credits so `credits` outlives all waiters.
    for (int i = 0; i < window; ++i) co_await credits.acquire();
  }(&c, src, host, dst, size, count, opt, window, sh);

  c.simulator().run();
  const Time per_msg = (sh->t_end - sh->t0) / count;
  record_measurement("host_overhead", sh->t0, sh->t_end,
                     static_cast<double>(per_msg) / 1e6, "us");
  return per_msg;
}

// ---------------------------------------------------------------------------
// minimpi / IB reference measurements
// ---------------------------------------------------------------------------

namespace {
BwResult mpi_bandwidth(Cluster& c, std::uint64_t size, int count,
                       bool device) {
  Buf src = Buf::make(c.node(0),
                      device ? core::MemType::kGpu : core::MemType::kHost,
                      size);
  Buf dst = Buf::make(c.node(1),
                      device ? core::MemType::kGpu : core::MemType::kHost,
                      size);
  auto sh = std::make_shared<Shared>();

  [](Cluster* c, Buf dst, std::uint64_t size, int count,
     std::shared_ptr<Shared> sh) -> sim::Coro {
    mpi::Rank& r = c->mpi_rank(1);
    std::vector<mpi::Signal> sigs;
    sigs.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
      sigs.push_back(r.recv(0, dst.addr, size, 1));
    for (auto& s : sigs) co_await s;
    sh->t_end = c->simulator().now();
  }(&c, dst, size, count, sh);

  [](Cluster* c, Buf src, std::uint64_t size, int count,
     std::shared_ptr<Shared> sh) -> sim::Coro {
    mpi::Rank& r = c->mpi_rank(0);
    co_await sim::delay(c->simulator(), units::us(30));
    sh->t0 = c->simulator().now();
    for (int i = 0; i < count; ++i) {
      co_await r.send(1, src.addr, size, 1);
    }
  }(&c, src, size, count, sh);

  c.simulator().run();
  BwResult r;
  r.bytes = size * static_cast<std::uint64_t>(count);
  r.elapsed = sh->t_end - sh->t0;
  r.mbps = units::bandwidth_MBps(Bytes(r.bytes), r.elapsed);
  return r;
}

Time mpi_latency(Cluster& c, std::uint64_t size, int reps, bool device) {
  Buf b0 = Buf::make(c.node(0),
                     device ? core::MemType::kGpu : core::MemType::kHost,
                     size);
  Buf b1 = Buf::make(c.node(1),
                     device ? core::MemType::kGpu : core::MemType::kHost,
                     size);
  auto sh = std::make_shared<Shared>();

  [](Cluster* c, Buf b, std::uint64_t size, int reps,
     std::shared_ptr<Shared> sh) -> sim::Coro {
    mpi::Rank& r = c->mpi_rank(0);
    co_await sim::delay(c->simulator(), units::us(30));
    sh->t0 = c->simulator().now();
    for (int i = 0; i < reps; ++i) {
      co_await r.send(1, b.addr, size, 5);
      co_await r.recv(1, b.addr, size, 6);
    }
    sh->t_end = c->simulator().now();
  }(&c, b0, size, reps, sh);

  [](Cluster* c, Buf b, std::uint64_t size, int reps) -> sim::Coro {
    mpi::Rank& r = c->mpi_rank(1);
    for (int i = 0; i < reps; ++i) {
      co_await r.recv(0, b.addr, size, 5);
      co_await r.send(0, b.addr, size, 6);
    }
  }(&c, b1, size, reps);

  c.simulator().run();
  return (sh->t_end - sh->t0) / (2 * reps);
}
}  // namespace

BwResult ib_gg_bandwidth(Cluster& c, std::uint64_t size, int count) {
  return mpi_bandwidth(c, size, count, true);
}
BwResult ib_hh_bandwidth(Cluster& c, std::uint64_t size, int count) {
  return mpi_bandwidth(c, size, count, false);
}
Time ib_gg_latency(Cluster& c, std::uint64_t size, int reps) {
  return mpi_latency(c, size, reps, true);
}
Time ib_hh_latency(Cluster& c, std::uint64_t size, int reps) {
  return mpi_latency(c, size, reps, false);
}

}  // namespace apn::cluster
