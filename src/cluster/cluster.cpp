#include "cluster/cluster.hpp"

#include <stdexcept>

#include "common/owner.hpp"
#include "hw/profile.hpp"
#include "trace/trace.hpp"

namespace apn::cluster {

namespace {
/// Integrated memory controller "link": wide and fast, so host DRAM is
/// never the PCIe bottleneck (Westmere-era ~20 GB/s per socket).
pcie::LinkParams imc_link() {
  pcie::LinkParams l;
  l.gen = 3;
  l.lanes = 24;
  l.max_payload = 256;
  l.tlp_overhead = 16;
  l.hop_latency = units::ns(90);
  return l;
}

std::uint64_t node_mmio_base(int index) {
  return 0xE00000000000ull + static_cast<std::uint64_t>(index) * (1ull << 36);
}
}  // namespace

Node::Node(sim::Simulator& sim, int index, core::TorusCoord coord,
           const NodeConfig& cfg, const core::ApenetParams& apn_params,
           const ib::HcaParams& ib_params)
    : index_(index) {
  // Construction scopes stamp every StateCell / APN_OWNER tag built below
  // with this node's partition instance (see src/common/owner.hpp): the
  // PCIe tree and its devices belong to the node's pcie_island, the
  // APEnet+ card-side model to its torus_node.
  owner::ScopedOwner island(owner::Domain::pcie_island, index);

  fabric_ = std::make_unique<pcie::Fabric>(
      sim, 4096, "node" + std::to_string(index) + ".pcie");
  int root = fabric_->add_root("rc" + std::to_string(index));

  hostmem_ = std::make_unique<pcie::HostMemory>(sim, cfg.hostmem);
  fabric_->attach(*hostmem_, root, imc_link());
  fabric_->set_default_target(*hostmem_);

  // PLX switch carrying the GPUs and the NICs (the paper's "ideal
  // platform": APEnet+ and GPU linked by a PLX PCIe switch).
  plx_ = fabric_->add_switch(root, pcie::gen2_x16(),
                             "plx" + std::to_string(index));

  const std::uint64_t base = node_mmio_base(index);
  std::vector<gpu::Gpu*> gpu_ptrs;
  for (std::size_t g = 0; g < cfg.gpus.size(); ++g) {
    auto gp = std::make_unique<gpu::Gpu>(
        sim, *fabric_, cfg.gpus[g],
        base + ((static_cast<std::uint64_t>(g) + 1) << 32),
        "gpu" + std::to_string(g));
    gpu_nodes_.push_back(fabric_->attach(*gp, plx_, cfg.gpu_slot));
    fabric_->claim_range(*gp, gp->mmio_base(), gp->mmio_size());
    gpu_ptrs.push_back(gp.get());
    gpus_.push_back(std::move(gp));
  }
  cuda_ = std::make_unique<cuda::Runtime>(sim, gpu_ptrs, cfg.cuda);

  if (cfg.has_apenet) {
    owner::ScopedOwner node_scope(owner::Domain::torus_node, index);
    card_ = std::make_unique<core::ApenetCard>(sim, *fabric_, apn_params,
                                               coord, base);
    card_node_ = fabric_->attach(*card_, plx_, cfg.apenet_slot);
    fabric_->claim_range(*card_, base, core::ApenetCard::kMmioSize);
    rdma_ = std::make_unique<core::RdmaDevice>(
        *card_, *hostmem_, gpus_.empty() ? nullptr : cuda_.get());
  }

  if (cfg.has_ib) {
    hca_ = std::make_unique<ib::Hca>(sim, *fabric_, *hostmem_, ib_params,
                                     index);
    fabric_->attach(*hca_, plx_, cfg.ib_slot);
  }
}

Cluster::Cluster(sim::Simulator& sim, core::TorusShape shape, NodeConfig cfg,
                 core::ApenetParams apn_params, ib::HcaParams ib_params,
                 mpi::MpiParams mpi_params)
    : sim_(&sim), shape_(shape), check_session_(check::Session::from_env(sim)) {
  // Honor APN_TRACE for every binary that assembles a cluster: the sink
  // must exist before components open their trace tracks.
  trace::init_from_env();
  for (int i = 0; i < shape.size(); ++i) {
    nodes_.push_back(std::make_unique<Node>(sim, i, shape.coord(i), cfg,
                                            apn_params, ib_params));
  }
  if (cfg.has_apenet) {
    apenet_ = std::make_unique<core::ApenetNetwork>(sim, shape);
    for (auto& n : nodes_) apenet_->add_card(n->card());
    apenet_->wire();
  }
  if (cfg.has_ib) {
    if (cfg.mpi_ranks) {
      mpi_world_ = std::make_unique<mpi::World>(sim, mpi_params);
      for (auto& n : nodes_) {
        mpi_ranks_.push_back(std::make_unique<mpi::Rank>(
            *mpi_world_, n->hca(), n->hostmem(),
            n->gpu_count() > 0 ? &n->cuda() : nullptr));
      }
    } else {
      raw_ib_switch_ = std::make_unique<ib::IbSwitch>(sim);
      for (auto& n : nodes_) raw_ib_switch_->connect(n->hca());
    }
  }
}

std::unique_ptr<Cluster> Cluster::make_cluster_i(
    sim::Simulator& sim, int nodes, core::ApenetParams apn_params,
    bool with_ib) {
  core::TorusShape shape;
  if (nodes == 1) shape = {1, 1, 1};
  else if (nodes == 2) shape = {2, 1, 1};
  else if (nodes == 4) shape = {4, 1, 1};
  else if (nodes == 8) shape = {4, 2, 1};
  // The 16/24-node configurations the paper announces as the next
  // expansion step ("we will be able to scale up to 16/24 nodes").
  else if (nodes == 16) shape = {4, 2, 2};
  else if (nodes == 24) shape = {4, 2, 3};
  else throw std::invalid_argument("Cluster I supports 1/2/4/8/16/24 nodes");

  // GPU model and PCIe slot wiring come from the active hardware profile
  // (docs/HARDWARE.md). The default, apenet_2013, reproduces the paper's
  // Cluster I exactly: one C2050-class GPU per node ("all Fermi 2050 but
  // one 2070"; the 6 GB C2070 only matters for the L=512 HSG run), the
  // card in a Gen2 x8 slot, and the HCA in the constrained x4 slot
  // (motherboard constraint, paper §V).
  const hw::HwProfile& hp = hw::active();
  NodeConfig cfg;
  cfg.gpus = {hp.gpu};
  cfg.has_apenet = true;
  cfg.has_ib = with_ib;
  cfg.apenet_slot = hp.apenet_slot;
  cfg.ib_slot = hp.ib_slot;
  cfg.gpu_slot = hp.gpu_slot;

  auto c = std::make_unique<Cluster>(sim, shape, cfg, apn_params,
                                     ib::HcaParams{}, mpi::MpiParams{});
  return c;
}

std::unique_ptr<Cluster> Cluster::make_cluster_ii(sim::Simulator& sim,
                                                  int nodes, bool with_mpi,
                                                  mpi::MpiParams mpi_params) {
  core::TorusShape shape{nodes, 1, 1};
  NodeConfig cfg;
  cfg.gpus = {gpu::fermi_c2075(), gpu::fermi_c2075()};
  cfg.has_apenet = false;
  cfg.has_ib = true;
  cfg.mpi_ranks = with_mpi;
  cfg.ib_slot = pcie::gen2_x8();
  return std::make_unique<Cluster>(sim, shape, cfg, core::ApenetParams{},
                                   ib::HcaParams{}, mpi_params);
}

}  // namespace apn::cluster
