// Cluster assembly: nodes (PCIe fabric + host memory + GPUs + NICs) and the
// paper's two testbeds.
//
//  * Cluster I — 8 dual-socket Xeon Westmere nodes in a 4x2x1 APEnet+
//    torus; one Fermi GPU per node (C2050, one C2070); a ConnectX-2 HCA in
//    a PCIe x4 slot ("due to motherboard constraints") on a Mellanox
//    MTS3600 switch. GPU and APEnet+ share a PLX PCIe switch.
//  * Cluster II — 12 Xeon Westmere nodes, two C2075 each, ConnectX-2 in a
//    x8 slot on an IS5030 switch (the IB reference platform).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "core/network.hpp"
#include "core/rdma.hpp"
#include "gpu/arch.hpp"
#include "ib/hca.hpp"
#include "minimpi/comm.hpp"
#include "pcie/memory.hpp"
#include "simcuda/runtime.hpp"

namespace apn::cluster {

struct NodeConfig {
  std::vector<gpu::GpuArch> gpus;
  bool has_apenet = true;
  bool has_ib = false;
  /// Create minimpi ranks over the HCAs. Disable for tests that drive the
  /// verbs-level HCA interface directly (the rank's progress loop would
  /// otherwise consume the HCA's receive events).
  bool mpi_ranks = true;
  pcie::LinkParams apenet_slot = pcie::gen2_x8();
  pcie::LinkParams ib_slot = pcie::gen2_x8();
  pcie::LinkParams gpu_slot = pcie::gen2_x16();
  pcie::HostMemoryParams hostmem{};
  cuda::RuntimeParams cuda{};
};

/// One cluster node: a PCIe tree with host DRAM at the root, a PLX switch
/// below it carrying the GPUs and the NIC(s).
class Node {
  // Assembly container: built once, only ever read at sim time.
  APN_OWNER(global_readonly)

 public:
  Node(sim::Simulator& sim, int index, core::TorusCoord coord,
       const NodeConfig& cfg, const core::ApenetParams& apn_params,
       const ib::HcaParams& ib_params);

  int index() const { return index_; }
  pcie::Fabric& fabric() { return *fabric_; }
  pcie::HostMemory& hostmem() { return *hostmem_; }
  cuda::Runtime& cuda() { return *cuda_; }
  gpu::Gpu& gpu(int i = 0) { return *gpus_.at(static_cast<std::size_t>(i)); }
  int gpu_count() const { return static_cast<int>(gpus_.size()); }

  bool has_apenet() const { return card_ != nullptr; }
  core::ApenetCard& card() { return *card_; }
  core::RdmaDevice& rdma() { return *rdma_; }

  bool has_ib() const { return hca_ != nullptr; }
  ib::Hca& hca() { return *hca_; }

  /// The PLX switch node id (for attaching a bus analyzer to a slot).
  int plx_switch_node() const { return plx_; }
  int card_pcie_node() const { return card_node_; }
  int gpu_pcie_node(int i = 0) const {
    return gpu_nodes_.at(static_cast<std::size_t>(i));
  }

 private:
  int index_;
  std::unique_ptr<pcie::Fabric> fabric_;
  std::unique_ptr<pcie::HostMemory> hostmem_;
  std::vector<std::unique_ptr<gpu::Gpu>> gpus_;
  std::unique_ptr<cuda::Runtime> cuda_;
  std::unique_ptr<core::ApenetCard> card_;
  std::unique_ptr<core::RdmaDevice> rdma_;
  std::unique_ptr<ib::Hca> hca_;
  int plx_ = -1;
  int card_node_ = -1;
  std::vector<int> gpu_nodes_;
};

/// A full machine: nodes + APEnet+ torus wiring + (optionally) the IB
/// switch with one minimpi rank per node.
class Cluster {
  // Assembly container: built once, only ever read at sim time.
  APN_OWNER(global_readonly)

 public:
  Cluster(sim::Simulator& sim, core::TorusShape shape, NodeConfig cfg,
          core::ApenetParams apn_params = {}, ib::HcaParams ib_params = {},
          mpi::MpiParams mpi_params = {});

  sim::Simulator& simulator() { return *sim_; }
  int size() const { return static_cast<int>(nodes_.size()); }
  Node& node(int i) { return *nodes_.at(static_cast<std::size_t>(i)); }
  core::TorusShape shape() const { return shape_; }
  core::TorusCoord coord(int i) const { return shape_.coord(i); }

  bool has_apenet() const { return apenet_ != nullptr; }
  core::ApenetNetwork& apenet() { return *apenet_; }
  core::RdmaDevice& rdma(int i) { return node(i).rdma(); }

  bool has_mpi() const { return mpi_world_ != nullptr; }
  mpi::World& mpi_world() { return *mpi_world_; }
  mpi::Rank& mpi_rank(int i) { return *mpi_ranks_.at(static_cast<std::size_t>(i)); }

  // ---- paper testbeds -------------------------------------------------------
  /// Cluster I: `nodes` <= 8 of the 4x2x1 torus (smaller counts keep the
  /// torus shape of the leading nodes: 2 -> 2x1x1, 4 -> 4x1x1, 8 -> 4x2x1).
  static std::unique_ptr<Cluster> make_cluster_i(
      sim::Simulator& sim, int nodes = 8, core::ApenetParams apn_params = {},
      bool with_ib = true);

  /// Cluster II: IB-only nodes with two C2075 GPUs each. `with_mpi=false`
  /// wires the HCAs into a bare switch for verbs-level tests. `mpi_params`
  /// selects the MPI stack flavor (MVAPICH2-style by default; pass
  /// mpi::openmpi2012_params() for the paper's OMPI reference columns).
  static std::unique_ptr<Cluster> make_cluster_ii(
      sim::Simulator& sim, int nodes = 12, bool with_mpi = true,
      mpi::MpiParams mpi_params = {});

 private:
  sim::Simulator* sim_;
  core::TorusShape shape_;
  /// Race-detector session, installed before any component schedules events
  /// (nullptr unless APN_CHECK / --check enabled checking).
  std::unique_ptr<check::Session> check_session_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<core::ApenetNetwork> apenet_;
  std::unique_ptr<mpi::World> mpi_world_;
  std::vector<std::unique_ptr<mpi::Rank>> mpi_ranks_;
  std::unique_ptr<ib::IbSwitch> raw_ib_switch_;  // mpi_ranks == false
};

}  // namespace apn::cluster
