// Parallel experiment runner: executes independent simulation closures
// ("points") concurrently on a fixed thread pool while committing their
// side effects in declaration order, so every output artifact — tables,
// NDJSON records, trace files — is byte-identical at any job count.
//
// Execution model:
//  * A point is a Work closure that builds its own Simulator + Cluster,
//    runs it, and returns a Commit closure (possibly empty). Work runs on
//    a pool thread; the Commit runs on the thread that called run(), in
//    declaration order, as soon as the point and all its predecessors
//    have finished. Point results that need no ordering (each point
//    writing a distinct result slot) may simply be stored from Work;
//    run() joining the pool publishes them.
//  * Isolation: before invoking Work the runner installs a fresh
//    trace::MetricsScope and — when APN_TRACE is enabled — a per-point
//    trace::TraceSink, so concurrently-running simulations cannot share
//    observability state. Per-point traces are written to
//    $APN_TRACE_OUT-derived paths ("apn_trace.json" -> "apn_trace.p0003.json")
//    during the ordered commit phase.
//  * Determinism: each simulation is single-threaded and owns every piece
//    of mutable state it touches (the repo keeps no process-global
//    simulation state), so the simulated timings are independent of the
//    job count; ordered commits make the *output* independent of it too.
//    tests/test_parallel_runner.cpp pins this contract.
//
// The pool is deliberately work-stealing-free: one shared atomic cursor
// hands points to workers in declaration order, which keeps start order
// deterministic and the structure simple; points are coarse (whole
// simulations), so stealing would buy nothing.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace apn::exp {

/// Runner configuration, typically parsed from the bench command line.
struct RunnerOptions {
  /// Worker count; 0 means auto (hardware_concurrency, at least 1).
  int jobs = 0;
  /// Substring filter: only points whose name contains it are executed.
  std::string filter;
  /// Print the declared point names instead of running anything.
  bool list = false;
  /// Hardware profile name (hw::select key). Empty means "leave the
  /// process default alone"; validation happens in bench::Runner, which
  /// resolves the name against the hw registry.
  std::string hw_profile;

  /// Parse `--jobs=N`, `--filter=<substr>`, `--list`, and
  /// `--hw-profile=<name>` from argv (unknown arguments are ignored —
  /// other flags such as `--json=` belong to their own parsers) and the
  /// APN_JOBS / APN_HW_PROFILE environment variables (flags win).
  /// Invalid jobs values fall back to auto.
  static RunnerOptions from_args(int argc, char** argv);
};

class ParallelRunner {
 public:
  /// Ordered side-effect phase of a point; empty commits are allowed.
  using Commit = std::function<void()>;
  /// Concurrent phase of a point: measure, then return the commit.
  using Work = std::function<Commit()>;

  explicit ParallelRunner(RunnerOptions opt = {});

  /// Declare a measurement point. `name` is the --filter / --list handle
  /// (convention: "<bench>/<variant>/<size>"); `work` must be
  /// self-contained apart from writing results to slots no other point
  /// touches.
  void add(std::string name, Work work);

  /// Execute every declared point that matches the filter and run their
  /// commits in declaration order; returns the number of points executed
  /// (0 under --list). Exceptions thrown by a point are rethrown here, in
  /// declaration order, after the pool drains.
  std::size_t run();

  /// Resolved worker count.
  int jobs() const { return jobs_; }
  const RunnerOptions& options() const { return opt_; }

 private:
  struct PointDecl {
    std::string name;
    Work work;
  };

  RunnerOptions opt_;
  int jobs_;
  std::vector<PointDecl> points_;
};

}  // namespace apn::exp
