#include "exp/runner.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace apn::exp {

namespace {

int auto_jobs() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

/// Per-point trace path: $APN_TRACE_OUT (default "apn_trace.json") with
/// ".pNNNN" spliced in before the extension, keyed by the point's position
/// in the (filtered) execution order so the mapping is stable across job
/// counts. The commit-phase stderr note names the point.
std::string trace_point_path(std::size_t seq) {
  const char* base = std::getenv("APN_TRACE_OUT");
  if (base == nullptr || base[0] == '\0') base = "apn_trace.json";
  std::string path(base);
  char tag[16];
  std::snprintf(tag, sizeof tag, ".p%04zu", seq);
  std::size_t dot = path.rfind('.');
  std::size_t slash = path.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + tag;
  }
  return path.substr(0, dot) + tag + path.substr(dot);
}

}  // namespace

RunnerOptions RunnerOptions::from_args(int argc, char** argv) {
  RunnerOptions opt;
  if (const char* env = std::getenv("APN_JOBS")) {
    int n = std::atoi(env);
    if (n > 0) opt.jobs = n;
  }
  if (const char* env = std::getenv("APN_HW_PROFILE")) {
    if (*env != '\0') opt.hw_profile = env;
  }
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--jobs=", 7) == 0) {
      int n = std::atoi(a + 7);
      opt.jobs = n > 0 ? n : 0;
    } else if (std::strncmp(a, "--filter=", 9) == 0) {
      opt.filter = a + 9;
    } else if (std::strcmp(a, "--list") == 0) {
      opt.list = true;
    } else if (std::strncmp(a, "--hw-profile=", 13) == 0) {
      opt.hw_profile = a + 13;
    }
  }
  return opt;
}

ParallelRunner::ParallelRunner(RunnerOptions opt)
    : opt_(std::move(opt)), jobs_(opt_.jobs > 0 ? opt_.jobs : auto_jobs()) {}

void ParallelRunner::add(std::string name, Work work) {
  points_.push_back(PointDecl{std::move(name), std::move(work)});
}

std::size_t ParallelRunner::run() {
  if (opt_.list) {
    for (const PointDecl& p : points_) std::printf("%s\n", p.name.c_str());
    return 0;
  }

  std::vector<const PointDecl*> selected;
  selected.reserve(points_.size());
  for (const PointDecl& p : points_) {
    if (opt_.filter.empty() || p.name.find(opt_.filter) != std::string::npos)
      selected.push_back(&p);
  }
  const std::size_t n = selected.size();
  const bool tracing = trace::env_enabled();

  struct Slot {
    Commit commit;
    std::string trace_json;
    std::size_t trace_events = 0;
    std::exception_ptr error;
    bool done = false;
  };
  std::vector<Slot> slots(n);

  // Concurrent phase of one point, with the per-simulation observability
  // scopes installed. Runs on a pool thread (or inline when jobs == 1).
  auto execute = [&](std::size_t i) {
    Slot& s = slots[i];
    trace::MetricsScope metrics;
    std::unique_ptr<trace::TraceSink> sink;
    std::optional<trace::SinkScope> scope;
    if (tracing) {
      sink = std::make_unique<trace::TraceSink>();
      scope.emplace(sink.get());
    }
    try {
      s.commit = selected[i]->work();
    } catch (...) {
      s.error = std::current_exception();
    }
    if (sink != nullptr && sink->size() > 0) {
      // Serialize on the worker (parallel); the file write itself happens
      // in the ordered commit phase.
      s.trace_json = sink->chrome_json();
      s.trace_events = sink->size();
    }
  };

  // Ordered phase: trace file, then the point's commit. Called on the
  // run() thread in declaration order; rethrows the point's exception.
  auto finish = [&](std::size_t i) {
    Slot& s = slots[i];
    if (!s.trace_json.empty()) {
      const std::string path = trace_point_path(i);
      std::FILE* f = std::fopen(path.c_str(), "w");
      bool ok = f != nullptr;
      if (ok) {
        ok = std::fwrite(s.trace_json.data(), 1, s.trace_json.size(), f) ==
             s.trace_json.size();
        ok = (std::fclose(f) == 0) && ok;
      }
      if (ok)
        std::fprintf(stderr, "[apn::trace] wrote %zu events to %s (%s)\n",
                     s.trace_events, path.c_str(),
                     selected[i]->name.c_str());
      else
        std::fprintf(stderr, "[apn::trace] failed to write %s\n",
                     path.c_str());
      s.trace_json.clear();
    }
    if (s.error) std::rethrow_exception(s.error);
    if (s.commit) {
      s.commit();
      s.commit = nullptr;
    }
  };

  const int workers =
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(jobs_),
                                             n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      execute(i);
      finish(i);
    }
    return n;
  }

  std::mutex mu;
  std::condition_variable cv;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> stop{false};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || stop.load(std::memory_order_relaxed)) break;
      execute(i);
      {
        std::lock_guard<std::mutex> lk(mu);
        slots[i].done = true;
      }
      cv.notify_all();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) pool.emplace_back(worker);
  try {
    for (std::size_t i = 0; i < n; ++i) {
      {
        std::unique_lock<std::mutex> lk(mu);
        // Host-side std::condition_variable in the worker pool, not a sim
        // awaitable.  apn-lint: allow(dropped-awaitable)
        cv.wait(lk, [&] { return slots[i].done; });
      }
      finish(i);
    }
  } catch (...) {
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : pool) t.join();
    throw;
  }
  for (std::thread& t : pool) t.join();
  return n;
}

}  // namespace apn::exp
