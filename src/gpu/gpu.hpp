// Gpu: a PCIe endpoint modeling an NVIDIA Fermi/Kepler board as seen by
// third-party devices and by the (simulated) CUDA runtime.
//
// Exposed hardware interfaces (the paper's §III background):
//  * GPUDirect peer-to-peer protocol: a request mailbox that third-party
//    devices write read-descriptors into; the GPU answers with *posted
//    writes* of the data to the descriptor's reply address (the two-way
//    protocol that works around chipset bugs with inter-device read
//    completions). Response streaming is bounded by `p2p_stream_rate`
//    (the architectural ~1.5 GB/s Fermi ceiling) and the first response of
//    a request lags it by `p2p_head_latency`.
//  * A P2P *write* window: a sliding 64 KB aperture + window control
//    register, used by the NIC's RX path to write GPU memory; switching
//    the window costs an extra control write (the paper's ~10% RX penalty).
//  * BAR1: a mappable aperture readable/writable with plain PCIe memory
//    operations; read-completion generation is rate-limited (150 MB/s on
//    Fermi, ~1.6 GB/s on Kepler).
//  * DMA copy engines used by cudaMemcpy (not routed through the fabric;
//    see DESIGN.md "known deviations").
//  * A compute engine for kernel-duration modeling.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <span>
#include <stdexcept>

#include "check/check.hpp"
#include "common/fn.hpp"
#include "gpu/arch.hpp"
#include "gpu/device_memory.hpp"
#include "pcie/fabric.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace apn::gpu {

/// Descriptor written into the P2P mailbox by a third-party device.
/// 32 bytes on the wire (matches the paper's ~96 MB/s protocol traffic at
/// 1.5 GB/s data rate with 512 B read granularity).
struct P2pReadDescriptor {
  std::uint64_t dev_offset;  ///< source address in GPU global memory
  std::uint32_t len;         ///< bytes requested
  std::uint32_t pad;
  std::uint64_t reply_addr;  ///< PCIe address the data is written back to
  std::uint64_t tag;         ///< opaque requester cookie (echoed, unused here)
};
static_assert(sizeof(P2pReadDescriptor) == 32);

/// MMIO layout offsets relative to the GPU's register BAR.
struct GpuMmio {
  static constexpr std::uint64_t kMailbox = 0x000000;
  static constexpr std::uint64_t kWindowCtl = 0x010000;
  static constexpr std::uint64_t kWindowAperture = 0x020000;
  static constexpr std::uint64_t kWindowBytes = 64 * 1024;
  static constexpr std::uint64_t kBar1Aperture = 0x100000;
};

class Gpu : public pcie::Device {
  APN_OWNER(pcie_island)

 public:
  /// `name` labels this GPU on the PCIe topology and its trace tracks
  /// (cluster assembly passes "gpu<i>").
  Gpu(sim::Simulator& sim, pcie::Fabric& fabric, GpuArch arch,
      std::uint64_t mmio_base, std::string name = "gpu");

  const GpuArch& arch() const { return arch_; }
  DeviceMemory& memory() { return mem_; }
  const DeviceMemory& memory() const { return mem_; }
  DeviceAllocator& allocator() { return alloc_; }

  std::uint64_t mmio_base() const { return mmio_base_; }
  std::uint64_t mmio_size() const {
    return GpuMmio::kBar1Aperture + arch_.bar1_aperture_bytes;
  }
  std::uint64_t mailbox_addr() const { return mmio_base_ + GpuMmio::kMailbox; }
  std::uint64_t window_ctl_addr() const {
    return mmio_base_ + GpuMmio::kWindowCtl;
  }
  std::uint64_t window_aperture_addr() const {
    return mmio_base_ + GpuMmio::kWindowAperture;
  }

  // ---- BAR1 management (driven by the simcuda runtime) -------------------
  /// Map device memory [dev_offset, +size) into the BAR1 aperture; returns
  /// the PCIe address of the mapping. Throws if the aperture is exhausted.
  std::uint64_t bar1_map(std::uint64_t dev_offset, std::uint64_t size);
  void bar1_reset();
  Bytes bar1_mapped_bytes() const { return Bytes(bar1_used_); }

  // ---- copy engines (used by the simcuda runtime) -------------------------
  sim::Resource& copy_engine_d2h() { return copy_d2h_; }
  sim::Resource& copy_engine_h2d() { return copy_h2d_; }
  sim::Resource& compute_engine() { return compute_; }

  // ---- statistics -----------------------------------------------------------
  std::uint64_t p2p_requests_served() const { return p2p_requests_.peek(); }
  int p2p_queue_depth() const { return p2p_queue_depth_; }
  Bytes p2p_bytes_served() const { return Bytes(p2p_bytes_.peek()); }
  std::uint64_t window_switches() const { return window_switches_.peek(); }

  // ---- pcie::Device ----------------------------------------------------------
  void handle_write(std::uint64_t addr, pcie::Payload payload) override;
  void handle_read(std::uint64_t addr, std::uint32_t len,
                   UniqueFn<void(pcie::Payload)> reply) override;

 private:
  void serve_p2p_request(const P2pReadDescriptor& desc);

  sim::Simulator* sim_;
  pcie::Fabric* fabric_;
  GpuArch arch_;
  DeviceMemory mem_;
  DeviceAllocator alloc_;
  // apn-lint: allow(check-coverage) — fixed at construction, never mutated
  std::uint64_t mmio_base_;

  sim::Resource p2p_response_line_;  ///< serializes P2P response streaming
  sim::Resource bar1_line_;          ///< serializes BAR1 read completions
  sim::Resource copy_d2h_;
  sim::Resource copy_h2d_;
  sim::Resource compute_;

  std::uint64_t window_page_ = 0;  ///< current P2P write-window target
  std::uint64_t bar1_used_ = 0;
  struct Bar1Mapping {
    std::uint64_t aperture_off, dev_offset, size;
  };
  std::vector<Bar1Mapping> bar1_maps_;

  check::StateCell<std::uint64_t> p2p_requests_{"gpu.p2p_requests"};
  check::StateCell<std::uint64_t> p2p_bytes_{"gpu.p2p_bytes"};
  check::StateCell<std::uint64_t> window_switches_{"gpu.window_switches"};
  int p2p_queue_depth_ = 0;
  std::deque<P2pReadDescriptor> p2p_backlog_;  ///< beyond the queue depth

  // Observability (inert unless a trace sink is installed; see src/trace).
  trace::Track trace_p2p_;   ///< P2P engine lane: head latency + streaming
  trace::Track trace_bar1_;  ///< BAR1 read-completion lane
  trace::Counter* m_p2p_requests_;
  trace::Counter* m_p2p_bytes_;
  trace::Counter* m_window_switches_;
  trace::Counter* m_bar1_reads_;
};

}  // namespace apn::gpu
