// Sparse GPU global memory: 64 KB pages allocated on first touch, so a
// simulated 6 GB board costs only what the workload actually writes.
// Addresses here are *device offsets* (0 .. mem_bytes); UVA translation
// lives in the simcuda runtime.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <unordered_map>

#include "common/owner.hpp"

namespace apn::gpu {

class DeviceMemory {
  APN_OWNER(pcie_island)

 public:
  static constexpr std::uint64_t kPageBytes = 64 * 1024;

  explicit DeviceMemory(std::uint64_t size_bytes) : size_(size_bytes) {}

  std::uint64_t size() const { return size_; }
  std::uint64_t resident_bytes() const { return pages_.size() * kPageBytes; }

  void write(std::uint64_t offset, std::span<const std::uint8_t> data) {
    check_range(offset, data.size());
    std::uint64_t pos = 0;
    while (pos < data.size()) {
      std::uint64_t addr = offset + pos;
      std::uint64_t page = addr / kPageBytes;
      std::uint64_t in_page = addr % kPageBytes;
      std::uint64_t n = std::min<std::uint64_t>(kPageBytes - in_page,
                                                data.size() - pos);
      std::memcpy(page_for(page).data() + in_page, data.data() + pos,
                  static_cast<std::size_t>(n));
      pos += n;
    }
  }

  void read(std::uint64_t offset, std::span<std::uint8_t> out) const {
    check_range(offset, out.size());
    std::uint64_t pos = 0;
    while (pos < out.size()) {
      std::uint64_t addr = offset + pos;
      std::uint64_t page = addr / kPageBytes;
      std::uint64_t in_page = addr % kPageBytes;
      std::uint64_t n =
          std::min<std::uint64_t>(kPageBytes - in_page, out.size() - pos);
      auto it = pages_.find(page);
      if (it != pages_.end()) {
        std::memcpy(out.data() + pos, it->second->data() + in_page,
                    static_cast<std::size_t>(n));
      } else {
        std::memset(out.data() + pos, 0, static_cast<std::size_t>(n));
      }
      pos += n;
    }
  }

 private:
  using Page = std::array<std::uint8_t, kPageBytes>;

  void check_range(std::uint64_t offset, std::uint64_t len) const {
    if (offset + len > size_)
      throw std::out_of_range("device memory access out of range");
  }

  Page& page_for(std::uint64_t page) {
    auto& p = pages_[page];
    if (!p) {
      p = std::make_unique<Page>();
      p->fill(0);
    }
    return *p;
  }

  std::uint64_t size_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

/// First-fit free-list allocator over a device-memory offset space.
/// Allocations are aligned to 256 B (CUDA's minimum alignment).
class DeviceAllocator {
  APN_OWNER(pcie_island)

 public:
  explicit DeviceAllocator(std::uint64_t size) { free_[0] = size; }

  static constexpr std::uint64_t kAlign = 256;

  /// Returns device offset; throws std::bad_alloc when full.
  std::uint64_t allocate(std::uint64_t size) {
    std::uint64_t need = (size + kAlign - 1) / kAlign * kAlign;
    if (need == 0) need = kAlign;
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      if (it->second >= need) {
        std::uint64_t base = it->first;
        std::uint64_t remaining = it->second - need;
        free_.erase(it);
        if (remaining > 0) free_[base + need] = remaining;
        live_[base] = need;
        used_ += need;
        return base;
      }
    }
    throw std::bad_alloc();
  }

  void deallocate(std::uint64_t base) {
    auto it = live_.find(base);
    if (it == live_.end())
      throw std::invalid_argument("deallocate: unknown block");
    std::uint64_t size = it->second;
    live_.erase(it);
    used_ -= size;
    // Insert and coalesce with neighbors.
    auto ins = free_.emplace(base, size).first;
    if (ins != free_.begin()) {
      auto prev = std::prev(ins);
      if (prev->first + prev->second == ins->first) {
        prev->second += ins->second;
        free_.erase(ins);
        ins = prev;
      }
    }
    auto next = std::next(ins);
    if (next != free_.end() && ins->first + ins->second == next->first) {
      ins->second += next->second;
      free_.erase(next);
    }
  }

  std::uint64_t used_bytes() const { return used_; }
  std::size_t live_blocks() const { return live_.size(); }

 private:
  std::map<std::uint64_t, std::uint64_t> free_;  // base -> size
  std::unordered_map<std::uint64_t, std::uint64_t> live_;
  std::uint64_t used_ = 0;
};

}  // namespace apn::gpu
