// GPU architecture parameter presets.
//
// Values are calibrated from the paper's measurements (Table I, Fig. 3) and
// public specs of the boards used on Cluster I/II: Fermi C2050/C2070/C2075
// and pre-release Kepler K20. `p2p_stream_rate` is the rate at which the
// GPU's peer-to-peer protocol engine streams response data onto PCIe — the
// paper's architectural ~1.5 GB/s Fermi read ceiling — not the much higher
// internal memory bandwidth.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace apn::gpu {

struct GpuArch {
  std::string name;
  std::uint64_t mem_bytes = 0;

  // --- GPUDirect peer-to-peer protocol engine ---------------------------
  Rate p2p_stream_rate{1.55e9};        ///< response streaming rate (B/s)
  Time p2p_head_latency = units::us(1.8);  ///< request -> first data
  int p2p_max_outstanding = 256;       ///< request mailbox queue depth

  // --- BAR1 aperture ------------------------------------------------------
  Rate bar1_read_rate{150e6};          ///< completion generation rate
  Rate bar1_write_rate{3.0e9};
  Time bar1_read_latency = units::us(1.0);
  std::uint64_t bar1_aperture_bytes = 256ull << 20;
  Time bar1_map_cost = units::ms(1.0);  ///< full GPU reconfiguration

  // --- copy (DMA) engines ---------------------------------------------------
  Rate dma_d2h_rate{5.5e9};  ///< cudaMemcpy device-to-host
  Rate dma_h2d_rate{5.7e9};  ///< cudaMemcpy host-to-device
  Time dma_setup = units::us(1.2);  ///< per-transfer engine setup

  // --- compute timing model -------------------------------------------------
  /// Heisenberg spin-glass over-relaxation single-spin update time.
  /// 921 ps measured for L=256 on a C2050 (paper Table II, NP=1).
  Time spin_update_time = units::ps(921);
  /// BFS edge-scan rate: calibrated so one GPU reaches ~6.7e7 TEPS on the
  /// scale-20 graph including kernel launch overheads (paper Table IV);
  /// TEPS ~ rate/2 because every undirected edge is scanned twice.
  Rate edge_scan_rate{1.36e8};
  Time kernel_launch_overhead = units::us(6.0);

  /// Completion latency for a read of unmapped MMIO space.
  Time unmapped_read_latency = units::ns(400);

  bool ecc_enabled = false;
  double ecc_bw_factor = 0.85;  ///< streaming-rate derating with ECC on

  Rate effective_p2p_rate() const {
    return p2p_stream_rate * (ecc_enabled ? ecc_bw_factor : 1.0);
  }
  Rate effective_bar1_read_rate() const {
    return bar1_read_rate * (ecc_enabled ? ecc_bw_factor : 1.0);
  }
};

inline GpuArch fermi_c2050() {
  GpuArch a;
  a.name = "Fermi C2050";
  a.mem_bytes = 3ull << 30;
  a.p2p_stream_rate = Rate(1.55e9);
  a.bar1_read_rate = Rate(150e6);
  return a;
}

inline GpuArch fermi_c2070() {
  GpuArch a = fermi_c2050();
  a.name = "Fermi C2070";
  a.mem_bytes = 6ull << 30;
  return a;
}

inline GpuArch fermi_c2075() {
  GpuArch a = fermi_c2070();
  a.name = "Fermi C2075";
  return a;
}

/// Pre-release K20 (GK110); paper Table I measured it with ECC *enabled*
/// and still saw 1.6 GB/s for both P2P and BAR1.
inline GpuArch kepler_k20() {
  GpuArch a;
  a.name = "Kepler K20";
  a.mem_bytes = 5ull << 30;
  a.p2p_stream_rate = Rate(1.9e9);  // 1.6 GB/s effective once ECC derates
  a.bar1_read_rate = Rate(1.9e9);
  a.bar1_read_latency = units::us(0.8);
  a.ecc_enabled = true;
  a.spin_update_time = units::ps(520);
  a.edge_scan_rate = Rate(2.4e8);
  return a;
}

inline GpuArch kepler_k10() {
  GpuArch a = kepler_k20();
  a.name = "Kepler K10";
  a.mem_bytes = 4ull << 30;
  return a;
}

/// K40-class board for the projected Gen3 hardware profile (hw::profile
/// "gen3"): a Gen3 x16 part whose P2P/BAR1 engines no longer cap well
/// below the slot rate. These are projections, not paper measurements —
/// see docs/HARDWARE.md for the derivation.
inline GpuArch kepler_k40() {
  GpuArch a = kepler_k20();
  a.name = "Kepler K40";
  a.mem_bytes = 12ull << 30;
  a.p2p_stream_rate = Rate(3.3e9);
  a.bar1_read_rate = Rate(3.3e9);
  a.bar1_read_latency = units::us(0.7);
  a.dma_d2h_rate = Rate(10.5e9);
  a.dma_h2d_rate = Rate(10.0e9);
  a.spin_update_time = units::ps(430);
  a.edge_scan_rate = Rate(3.0e8);
  return a;
}

}  // namespace apn::gpu
