#include "gpu/gpu.hpp"

#include <utility>

namespace apn::gpu {

Gpu::Gpu(sim::Simulator& sim, pcie::Fabric& fabric, GpuArch arch,
         std::uint64_t mmio_base, std::string name)
    : sim_(&sim),
      fabric_(&fabric),
      arch_(std::move(arch)),
      mem_(arch_.mem_bytes),
      alloc_(arch_.mem_bytes),
      mmio_base_(mmio_base),
      p2p_response_line_(sim),
      bar1_line_(sim),
      copy_d2h_(sim),
      copy_h2d_(sim),
      compute_(sim) {
  set_pcie_name(name);
  trace_p2p_ = trace::Track::open(fabric.name(), name + ".p2p");
  trace_bar1_ = trace::Track::open(fabric.name(), name + ".bar1");
  auto& m = trace::MetricsRegistry::global();
  m_p2p_requests_ = &m.counter("gpu.p2p.requests");
  m_p2p_bytes_ = &m.counter("gpu.p2p.bytes");
  m_window_switches_ = &m.counter("gpu.window_switches");
  m_bar1_reads_ = &m.counter("gpu.bar1.reads");
}

std::uint64_t Gpu::bar1_map(std::uint64_t dev_offset, std::uint64_t size) {
  if (bar1_used_ + size > arch_.bar1_aperture_bytes)
    throw std::runtime_error("BAR1 aperture exhausted");
  std::uint64_t aperture_off = bar1_used_;
  bar1_used_ += (size + 0xFFFFull) & ~0xFFFFull;  // 64 KB granularity
  bar1_maps_.push_back(Bar1Mapping{aperture_off, dev_offset, size});
  // kAccum: two same-tick BAR1 mappings allocate disjoint aperture ranges;
  // either allocation order yields self-consistent, equally-timed mappings.
  APN_CHECK_ACCESS(bar1_used_, kAccum);
  APN_CHECK_ACCESS(bar1_maps_, kAccum);
  return mmio_base_ + GpuMmio::kBar1Aperture + aperture_off;
}

void Gpu::bar1_reset() {
  bar1_used_ = 0;
  bar1_maps_.clear();
  // Reset is a teardown-path write: keep it order-sensitive so a reset
  // racing a same-tick mapping or aperture access is flagged.
  APN_CHECK_ACCESS(bar1_used_, kWrite);
  APN_CHECK_ACCESS(bar1_maps_, kWrite);
}

void Gpu::serve_p2p_request(const P2pReadDescriptor& desc) {
  // The request mailbox has a finite queue (the "multiple-outstanding read
  // request queue" of Fig. 2); requests beyond the depth wait until a
  // completion frees a slot.
  APN_CHECK_ACCESS(p2p_queue_depth_, kRead);
  if (p2p_queue_depth_ >= arch_.p2p_max_outstanding) {
    p2p_backlog_.push_back(desc);
    APN_CHECK_ACCESS(p2p_backlog_, kWrite);
    return;
  }
  ++p2p_requests_;
  p2p_bytes_ += desc.len;
  ++p2p_queue_depth_;
  APN_CHECK_ACCESS(p2p_queue_depth_, kWrite);
  m_p2p_requests_->inc();
  m_p2p_bytes_->add(desc.len);
  const Time t_accept = sim_->now();
  // First data lags the request by the head latency; once flowing, the
  // response engine streams at the architectural P2P rate. Head latencies
  // of back-to-back requests overlap (the engine pipelines), which is what
  // makes prefetching effective for the requester. Responses are emitted
  // as 512 B completion writes, so large (V1-style 4 KB) requests overlap
  // their own PCIe serialization with the response streaming.
  sim_->after(arch_.p2p_head_latency, [this, desc, t_accept] {
    constexpr std::uint32_t kCompletion = 512;
    std::uint32_t off = 0;
    while (off < desc.len) {
      const std::uint32_t sub = std::min(kCompletion, desc.len - off);
      const bool last = off + sub >= desc.len;
      Time stream_time =
          units::transfer_time(Bytes(sub), arch_.effective_p2p_rate());
      p2p_response_line_.post(stream_time, [this, desc, t_accept, off, sub,
                                            last] {
        if (last) {
          // The two phases of a served read request (paper Fig. 3): head
          // latency until the response engine starts, then streaming of
          // the posted-write completions.
          const Time t_head = t_accept + arch_.p2p_head_latency;
          trace_p2p_.span("gpu", "p2p_head", t_accept, t_head,
                          {{"dev_offset", desc.dev_offset},
                           {"bytes", desc.len}});
          trace_p2p_.span("gpu", "p2p_stream", t_head, sim_->now(),
                          {{"dev_offset", desc.dev_offset},
                           {"bytes", desc.len}});
          --p2p_queue_depth_;
          APN_CHECK_ACCESS(p2p_queue_depth_, kWrite);
          if (!p2p_backlog_.empty()) {
            P2pReadDescriptor next = p2p_backlog_.front();
            p2p_backlog_.pop_front();
            APN_CHECK_ACCESS(p2p_backlog_, kWrite);
            serve_p2p_request(next);
          }
        }
        pcie::Payload p;
        p.bytes = sub;
        p.data.resize(sub);
        mem_.read(desc.dev_offset + off, std::span<std::uint8_t>(p.data));
        fabric_->post_write(*this, desc.reply_addr, std::move(p));
      });
      off += sub;
    }
  });
}

void Gpu::handle_write(std::uint64_t addr, pcie::Payload payload) {
  const std::uint64_t off = addr - mmio_base_;

  if (off == GpuMmio::kMailbox) {
    P2pReadDescriptor desc{};
    if (payload.data.size() >= sizeof(desc)) {
      std::memcpy(&desc, payload.data.data(), sizeof(desc));
      serve_p2p_request(desc);
    }
    return;
  }

  if (off == GpuMmio::kWindowCtl) {
    if (payload.data.size() >= sizeof(std::uint64_t)) {
      std::memcpy(&window_page_, payload.data.data(), sizeof(window_page_));
      APN_CHECK_ACCESS(window_page_, kWrite);
      ++window_switches_;
      m_window_switches_->inc();
      trace_p2p_.instant("gpu", "window_switch", sim_->now(),
                         {{"page", window_page_}});
    }
    return;
  }

  if (off >= GpuMmio::kWindowAperture &&
      off < GpuMmio::kWindowAperture + GpuMmio::kWindowBytes) {
    if (!payload.data.empty()) {
      APN_CHECK_ACCESS(window_page_, kRead);
      std::uint64_t dev_off = window_page_ + (off - GpuMmio::kWindowAperture);
      mem_.write(dev_off, std::span<const std::uint8_t>(payload.data));
    }
    return;
  }

  if (off >= GpuMmio::kBar1Aperture) {
    std::uint64_t ap = off - GpuMmio::kBar1Aperture;
    // kSample: a same-tick bar1_map() adds a mapping this access cannot
    // target yet (its PCIe address is only returned by that call), so the
    // lookup is order-independent. bar1_reset() races stay flagged via the
    // reset's kWrite.
    APN_CHECK_ACCESS(bar1_maps_, kSample);
    for (const Bar1Mapping& m : bar1_maps_) {
      if (ap >= m.aperture_off && ap - m.aperture_off < m.size) {
        if (!payload.data.empty())
          mem_.write(m.dev_offset + (ap - m.aperture_off),
                     std::span<const std::uint8_t>(payload.data));
        return;
      }
    }
  }
  // Writes to unmapped space are dropped (master abort), as on hardware.
}

void Gpu::handle_read(std::uint64_t addr, std::uint32_t len,
                      UniqueFn<void(pcie::Payload)> reply) {
  const std::uint64_t off = addr - mmio_base_;
  if (off >= GpuMmio::kBar1Aperture) {
    std::uint64_t ap = off - GpuMmio::kBar1Aperture;
    // kSample: see handle_write — mappings referenced here pre-date the
    // access by contract; only reset() may legitimately conflict.
    APN_CHECK_ACCESS(bar1_maps_, kSample);
    for (const Bar1Mapping& m : bar1_maps_) {
      if (ap >= m.aperture_off && ap - m.aperture_off < m.size) {
        std::uint64_t dev_off = m.dev_offset + (ap - m.aperture_off);
        // Head latency pipelines across outstanding reads; completion
        // generation serializes at the BAR1 read rate (the Fermi
        // 150 MB/s bottleneck).
        Time stream =
            units::transfer_time(Bytes(len), arch_.effective_bar1_read_rate());
        m_bar1_reads_->inc();
        const Time t_req = sim_->now();
        sim_->after(arch_.bar1_read_latency, [this, dev_off, len, stream,
                                              t_req,
                                              reply = std::move(reply)]() mutable {
          bar1_line_.post(stream,
                          [this, dev_off, len, t_req,
                           reply = std::move(reply)]() mutable {
                            trace_bar1_.span("gpu", "bar1_read", t_req,
                                             sim_->now(),
                                             {{"dev_offset", dev_off},
                                              {"bytes", len}});
                            pcie::Payload p;
                            p.bytes = len;
                            p.data.resize(len);
                            mem_.read(dev_off,
                                      std::span<std::uint8_t>(p.data));
                            reply(std::move(p));
                          });
        });
        return;
      }
    }
  }
  // Reads of unmapped space complete with zeros after a nominal delay.
  sim_->after(arch_.unmapped_read_latency,
              [len, reply = std::move(reply)]() mutable {
                reply(pcie::Payload::timing(len));
              });
}

}  // namespace apn::gpu
